package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"
	"time"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/fault"
	"thermplace/internal/flow"
	"thermplace/internal/thermal"
)

func TestTrackerDrain(t *testing.T) {
	var tr tracker
	if !tr.enter() {
		t.Fatal("enter must succeed before drain")
	}
	tr.beginDrain()
	if tr.enter() {
		t.Fatal("enter must fail during drain")
	}
	idle := tr.awaitIdle()
	select {
	case <-idle:
		t.Fatal("idle fired with a request still in flight")
	case <-time.After(10 * time.Millisecond):
	}
	tr.exit()
	select {
	case <-idle:
	case <-time.After(time.Second):
		t.Fatal("idle did not fire after last exit")
	}
	// Idempotent drain on an idle tracker resolves immediately.
	tr.beginDrain()
	select {
	case <-tr.awaitIdle():
	case <-time.After(time.Second):
		t.Fatal("awaitIdle on an idle draining tracker must resolve immediately")
	}
}

func TestAdmissionBounds(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()

	rel1, err := a.acquire(ctx, nil)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Occupy the single queue slot with a waiter.
	waiterCtx, waiterCancel := context.WithCancel(ctx)
	defer waiterCancel()
	got := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, werr := a.acquire(waiterCtx, nil)
		if rel != nil {
			defer rel()
		}
		got <- werr
	}()
	for a.inQueue() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Third query: queue full, shed immediately.
	var shed *shedError
	if _, err := a.acquire(ctx, nil); !errors.As(err, &shed) || shed.reason != ShedQueueFull {
		t.Fatalf("full queue must shed with %s, got %v", ShedQueueFull, err)
	}

	// The queued waiter's deadline expires: shed without starting.
	waiterCancel()
	if werr := <-got; !errors.As(werr, &shed) || shed.reason != ShedDeadline {
		t.Fatalf("expired queued query must shed with %s, got %v", ShedDeadline, werr)
	}
	wg.Wait()

	// An expired context never acquires, even with a free slot queued.
	rel1()
	expired, cancel := context.WithCancel(ctx)
	cancel()
	if rel, err := a.acquire(expired, nil); err == nil {
		rel()
		t.Fatal("expired context acquired a slot")
	}

	// Draining re-check after a queued wait sheds instead of starting.
	rel2, err := a.acquire(ctx, nil)
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	drained := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, werr := a.acquire(ctx, func() bool { return true })
		if rel != nil {
			defer rel()
		}
		drained <- werr
	}()
	for a.inQueue() == 0 {
		time.Sleep(time.Millisecond)
	}
	rel2()
	if werr := <-drained; !errors.As(werr, &shed) || shed.reason != ShedDraining {
		t.Fatalf("queued query on a draining server must shed with %s, got %v", ShedDraining, werr)
	}
	wg.Wait()
}

func TestBreakerAutomaton(t *testing.T) {
	var mu sync.Mutex
	tm := time.Unix(0, 0)
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return tm }
	advance := func(d time.Duration) { mu.Lock(); tm = tm.Add(d); mu.Unlock() }

	b := newBreaker(2, time.Minute, now)
	fail := fmt.Errorf("flow: thermal simulation: %w", &fault.ErrNotConverged{Iters: 9})

	// Closed: primary in use; one failure does not trip, a success resets.
	if p, _ := b.route(); !p {
		t.Fatal("closed breaker must route to primary")
	}
	b.record(true, false, fail)
	b.record(true, false, nil)
	b.record(true, false, fail)
	if p, _ := b.route(); !p {
		t.Fatal("one failure after a success must not trip a trips=2 breaker")
	}
	// Two consecutive qualifying failures open it. Cancellations never count.
	b.record(true, false, fault.Canceled(context.Canceled))
	b.record(true, false, fail)
	b.record(true, false, fail)
	if p, _ := b.route(); p {
		t.Fatal("breaker must be open after two consecutive solver faults")
	}
	if got := b.current(); got != "open" {
		t.Fatalf("state = %s, want open", got)
	}

	// Cooldown over: exactly one probe goes to the primary, the rest stay on
	// the fallback.
	advance(2 * time.Minute)
	p1, probe1 := b.route()
	if !p1 || !probe1 {
		t.Fatalf("first route after cooldown must probe the primary (primary=%v probe=%v)", p1, probe1)
	}
	if p2, _ := b.route(); p2 {
		t.Fatal("second route during a probe must stay on the fallback")
	}
	// A canceled probe is inconclusive: stay half-open, probe again.
	b.record(true, true, fault.Canceled(context.DeadlineExceeded))
	if p, probe := b.route(); !p || !probe {
		t.Fatal("after an inconclusive probe the next route must probe again")
	}
	// A faulted probe reopens for another full cooldown.
	b.record(true, true, fail)
	if p, _ := b.route(); p {
		t.Fatal("breaker must reopen after a faulted probe")
	}
	advance(2 * time.Minute)
	if p, probe := b.route(); !p || !probe {
		t.Fatal("reopened breaker must probe again after its cooldown")
	}
	// A clean probe closes it.
	b.record(true, true, nil)
	if p, _ := b.route(); !p {
		t.Fatal("breaker must close after a clean probe")
	}
	if got := b.current(); got != "closed" {
		t.Fatalf("state = %s, want closed", got)
	}
}

func TestResultCacheLRU(t *testing.T) {
	stats := &fault.Stats{}
	c := newResultCache(100, stats)
	mk := func(k string) *Result { return &Result{Query: k} }

	c.put("a", mk("a"), 40)
	c.put("b", mk("b"), 40)
	if got := c.get("a"); got == nil || !got.Cached || got.Query != "a" {
		t.Fatalf("hit on a = %+v", got)
	}
	// Inserting c (40) exceeds the budget; b is now the LRU and must go.
	c.put("c", mk("c"), 40)
	if c.get("b") != nil {
		t.Fatal("b must have been evicted")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Fatal("a and c must survive")
	}
	if ev := stats.Snapshot().Evicted; ev != 1 {
		t.Fatalf("evicted = %d, want 1", ev)
	}
	if c.footprint() != 80 {
		t.Fatalf("footprint = %d, want 80", c.footprint())
	}
	// The stored entry must not be contaminated by the hit's Cached flag.
	if ent := c.entries["a"].Value.(*cacheEntry); ent.res.Cached {
		t.Fatal("stored entry mutated by get")
	}
	// An entry larger than the whole budget is not cached.
	c.put("huge", mk("huge"), 101)
	if c.get("huge") != nil {
		t.Fatal("over-budget entry must not be cached")
	}
	// A disabled cache (negative budget) never stores.
	off := newResultCache(-1, stats)
	off.put("x", mk("x"), 1)
	if off.get("x") != nil {
		t.Fatal("disabled cache returned a hit")
	}
}

// Regression: a budget of 0 must behave as a disabled cache. Before the fix,
// zero-cost entries passed the `cost > budget` admission check and the
// byte-based eviction loop never fired, so the entry count (and the map/list
// overhead the byte accounting ignores) grew without bound.
func TestResultCacheZeroBudgetAdmitsNothing(t *testing.T) {
	stats := &fault.Stats{}
	c := newResultCache(0, stats)
	mk := func(k string) *Result { return &Result{Query: k} }
	for i := 0; i < 100; i++ {
		c.put("k"+strconv.Itoa(i), mk("x"), 0)
	}
	if n := c.entriesLen(); n != 0 {
		t.Fatalf("budget-0 cache holds %d entries, want 0", n)
	}
	if c.get("k0") != nil {
		t.Fatal("budget-0 cache returned a hit")
	}

	// Non-positive costs are rejected even on an enabled cache: they would
	// be unevictable by the byte accounting.
	on := newResultCache(100, stats)
	on.put("zero", mk("zero"), 0)
	on.put("neg", mk("neg"), -8)
	if n := on.entriesLen(); n != 0 {
		t.Fatalf("non-positive-cost entries admitted: %d resident", n)
	}
}

func TestQueryParseAndKey(t *testing.T) {
	q, err := ParseQuery(KindAnalyze, url.Values{"util": {"0.7"}, "full": {"1"}})
	if err != nil {
		t.Fatalf("parse analyze: %v", err)
	}
	if q.Key() != "analyze?util=0.7&full=1" {
		t.Fatalf("key = %q", q.Key())
	}
	// Sweep overheads are canonicalized by sorting: permutations share a key.
	q1, _ := ParseQuery(KindSweep, url.Values{"overheads": {"0.2,0.05"}})
	q2, _ := ParseQuery(KindSweep, url.Values{"overheads": {"0.05, 0.2"}})
	if q1.Key() != q2.Key() {
		t.Fatalf("permuted sweeps got different keys: %q vs %q", q1.Key(), q2.Key())
	}
	// Adaptive sweeps key separately from exhaustive ones over the same
	// overheads: they enumerate a different candidate grid.
	qa, err := ParseQuery(KindSweep, url.Values{"overheads": {"0.05,0.2"}, "adaptive": {"1"}, "grid_scale": {"4"}})
	if err != nil {
		t.Fatalf("parse adaptive sweep: %v", err)
	}
	if qa.Key() == q2.Key() {
		t.Fatalf("adaptive sweep shares key with exhaustive: %q", qa.Key())
	}
	if !qa.Adaptive || qa.GridScale != 4 {
		t.Fatalf("adaptive params lost in parse: %+v", qa)
	}
	bad := []struct {
		kind Kind
		vals url.Values
	}{
		{KindAnalyze, url.Values{"util": {"nope"}}},
		{KindAnalyze, url.Values{"util": {"1.5"}}},
		{KindERI, url.Values{}},
		{KindERI, url.Values{"rows": {"-1"}}},
		{KindHW, url.Values{"overhead": {"0"}}},
		{KindSweep, url.Values{"overheads": {"0.1,bogus"}}},
		{KindSweep, url.Values{"adaptive": {"maybe"}}},
		{KindSweep, url.Values{"adaptive": {"1"}, "grid_scale": {"0"}}},
		{KindSweep, url.Values{"grid_scale": {"3"}}},
		{Kind("mystery"), url.Values{}},
	}
	for _, c := range bad {
		if _, err := ParseQuery(c.kind, c.vals); err == nil {
			t.Fatalf("ParseQuery(%s, %v) accepted bad input", c.kind, c.vals)
		}
		var hse *httpStatusError
		if _, err := ParseQuery(c.kind, c.vals); !errors.As(err, &hse) || hse.status != http.StatusBadRequest {
			t.Fatalf("ParseQuery(%s, %v) error not a 400: %v", c.kind, c.vals, err)
		}
	}
}

// TestServerAdaptiveSweep runs the two-phase multi-fidelity sweep through the
// HTTP path: the response must be bit-identical to a direct Exec of the same
// query, carry triage statistics, and fold them into /statz — once, because
// the repeat request is a cache hit that did no triage work.
func TestServerAdaptiveSweep(t *testing.T) {
	gen, cfg := testDesign(t)
	srv := NewServer(Config{})
	if err := srv.AddDesign(context.Background(), "d", gen.Design, gen.Workload, cfg, nil); err != nil {
		t.Fatalf("AddDesign: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ref := flow.New(gen.Design, gen.Workload, cfg)
	defer ref.Close()
	q, err := ParseQuery(KindSweep, url.Values{"overheads": {"0.1,0.3"}, "adaptive": {"1"}, "grid_scale": {"2"}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want, _, err := Exec(context.Background(), ref, q)
	if err != nil {
		t.Fatalf("reference Exec: %v", err)
	}

	var got Result
	url := ts.URL + "/sweep?design=d&overheads=0.1,0.3&adaptive=1&grid_scale=2"
	if code, _ := getJSON(t, ts.Client(), url, &got); code != http.StatusOK {
		t.Fatalf("adaptive sweep status %d: %+v", code, got)
	}
	if got.Triage == nil {
		t.Fatal("adaptive sweep response carries no triage summary")
	}
	tr := got.Triage
	if tr.Candidates <= 0 || tr.Survivors <= 0 || tr.Survivors > tr.Candidates ||
		tr.ExactSolves <= 0 || tr.CoarseSolves <= 0 {
		t.Fatalf("triage summary implausible: %+v", tr)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("served %d points, direct Exec %d", len(got.Points), len(want.Points))
	}
	for i, pt := range got.Points {
		if pt != want.Points[i] {
			t.Fatalf("served point %d differs from direct Exec:\n got %+v\nwant %+v", i, pt, want.Points[i])
		}
	}
	sawAspect := false
	for _, pt := range got.Points {
		if pt.Aspect > 0 {
			sawAspect = true
		}
	}
	if !sawAspect {
		t.Fatal("adaptive sweep points carry no aspect ratio")
	}

	// Repeat query: cache hit, same answer, no new triage work.
	var hit Result
	if code, _ := getJSON(t, ts.Client(), url, &hit); code != http.StatusOK || !hit.Cached {
		t.Fatalf("repeat adaptive sweep not cached (status %d, cached %v)", code, hit.Cached)
	}

	var stz StatzResponse
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/statz", &stz); code != http.StatusOK {
		t.Fatalf("statz status %d", code)
	}
	ds := stz.Designs[0]
	if ds.AdaptiveSweeps != 1 {
		t.Fatalf("adaptive_sweeps = %d after one fresh + one cached query", ds.AdaptiveSweeps)
	}
	if ds.AdaptiveCandidates != int64(tr.Candidates) ||
		ds.AdaptiveTriaged != int64(tr.Candidates-tr.Survivors) ||
		ds.AdaptiveExact != int64(tr.ExactSolves) {
		t.Fatalf("statz triage counters %+v disagree with response summary %+v", ds, tr)
	}
}

// testDesign generates a compact scenario and its flow config, small enough
// that a query solves in milliseconds.
func testDesign(t *testing.T) (*bench.Generated, flow.Config) {
	t.Helper()
	gen, err := bench.Scenario{Family: bench.FamilyHotspotCluster, Seed: 9, TargetCells: 800}.Generate(celllib.Default65nm())
	if err != nil {
		t.Fatalf("generate scenario: %v", err)
	}
	cfg := flow.ScenarioConfig(gen.Scenario)
	cfg.SimCycles = 32
	cfg.RefinePasses = 0
	cfg.Thermal.NX, cfg.Thermal.NY = 12, 12
	return gen, cfg
}

func getJSON(t *testing.T, client *http.Client, url string, out any) (int, http.Header) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	return resp.StatusCode, resp.Header
}

func TestServerEndToEnd(t *testing.T) {
	gen, cfg := testDesign(t)
	srv := NewServer(Config{MaxInFlight: 2, MaxQueue: 2})
	if err := srv.AddDesign(context.Background(), "d", gen.Design, gen.Workload, cfg, nil); err != nil {
		t.Fatalf("AddDesign: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A served analyze query must be bit-identical to a direct Exec on an
	// equivalently configured flow (JSON round-trips float64 exactly).
	ref := flow.New(gen.Design, gen.Workload, cfg)
	defer ref.Close()
	want, _, err := Exec(context.Background(), ref, Query{Kind: KindAnalyze, Utilization: 0.7, Full: true})
	if err != nil {
		t.Fatalf("reference Exec: %v", err)
	}
	var got Result
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.7&full=1", &got); code != http.StatusOK {
		t.Fatalf("analyze status %d, body %+v", code, got)
	}
	if got.PeakRiseK != want.PeakRiseK || got.TempReduction != want.TempReduction ||
		got.TotalPowerW != want.TotalPowerW || got.AreaOverhead != want.AreaOverhead {
		t.Fatalf("served result differs from direct Exec:\n got %+v\nwant %+v", got, want)
	}
	if got.CriticalPathPs != want.CriticalPathPs || got.WorstSlackPs != want.WorstSlackPs ||
		got.HPWLUm != want.HPWLUm || got.CongestionOverflows != want.CongestionOverflows ||
		got.CongestionMaxUtil != want.CongestionMaxUtil {
		t.Fatalf("served co-analysis metrics differ from direct Exec:\n got %+v\nwant %+v", got, want)
	}
	if got.CriticalPathPs <= 0 || got.HPWLUm <= 0 {
		t.Fatalf("co-analysis metrics missing from /analyze: %+v", got)
	}
	if len(got.Surface) != len(want.Surface) {
		t.Fatalf("surface rows %d, want %d", len(got.Surface), len(want.Surface))
	}
	for iy := range want.Surface {
		for ix := range want.Surface[iy] {
			if got.Surface[iy][ix] != want.Surface[iy][ix] {
				t.Fatalf("surface[%d][%d] = %g, want %g (bit-exact)", iy, ix, got.Surface[iy][ix], want.Surface[iy][ix])
			}
		}
	}
	if got.Degraded || got.Cached {
		t.Fatalf("fresh primary result flagged degraded=%v cached=%v", got.Degraded, got.Cached)
	}

	// The same query again is a cache hit with identical values.
	var hit Result
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.7&full=1", &hit); code != http.StatusOK {
		t.Fatalf("cached analyze status %d", code)
	}
	if !hit.Cached {
		t.Fatal("repeat query not served from cache")
	}
	if hit.PeakRiseK != got.PeakRiseK {
		t.Fatalf("cache hit changed the answer: %g vs %g", hit.PeakRiseK, got.PeakRiseK)
	}

	// Delta queries: ERI with explicit rows, HW at an overhead.
	var eri Result
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/delta?design=d&strategy=eri&rows=2", &eri); code != http.StatusOK {
		t.Fatalf("eri status %d: %+v", code, eri)
	}
	if eri.Rows != 2 || eri.PeakRiseK <= 0 {
		t.Fatalf("eri result implausible: %+v", eri)
	}
	var hw Result
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/delta?design=d&strategy=hw&overhead=0.25", &hw); code != http.StatusOK {
		t.Fatalf("hw status %d: %+v", code, hw)
	}

	// A small sweep.
	var sw Result
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/sweep?design=d&overheads=0.25", &sw); code != http.StatusOK {
		t.Fatalf("sweep status %d: %+v", code, sw)
	}
	if len(sw.Points) == 0 {
		t.Fatal("sweep returned no points")
	}
	onFront := 0
	for _, pt := range sw.Points {
		if pt.CriticalPathPs <= 0 || pt.HPWLUm <= 0 {
			t.Fatalf("sweep point missing co-analysis metrics: %+v", pt)
		}
		if pt.Pareto {
			onFront++
		}
	}
	if onFront == 0 {
		t.Fatal("no sweep point marked on the Pareto front")
	}

	// Error paths carry categories.
	var eb errorBody
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=nope", &eb); code != http.StatusNotFound || eb.Category != "unknown-design" {
		t.Fatalf("unknown design: status %d category %q", code, eb.Category)
	}
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=zzz", &eb); code != http.StatusBadRequest || eb.Category != "bad-request" {
		t.Fatalf("bad util: status %d category %q", code, eb.Category)
	}
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/delta?design=d", &eb); code != http.StatusBadRequest {
		t.Fatalf("missing strategy: status %d", code)
	}

	// Health endpoints and statz.
	var hb map[string]string
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/healthz", &hb); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/readyz", &hb); code != http.StatusOK {
		t.Fatalf("readyz status %d before drain", code)
	}
	var stz StatzResponse
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/statz", &stz); code != http.StatusOK {
		t.Fatalf("statz status %d", code)
	}
	if len(stz.Designs) != 1 || stz.Designs[0].Design != "d" {
		t.Fatalf("statz designs: %+v", stz.Designs)
	}
	ds := stz.Designs[0]
	if ds.Admitted < 5 || ds.Breaker != "closed" || ds.CacheBytes <= 0 {
		t.Fatalf("statz counters implausible: %+v", ds)
	}
	if ds.BaselineCriticalPathPs <= 0 || ds.BaselineHPWLUm <= 0 {
		t.Fatalf("statz missing baseline co-analysis metrics: %+v", ds)
	}

	// Drain: readyz flips, queries shed, nothing accepted afterwards.
	srv.BeginDrain()
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/readyz", &hb); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d during drain", code)
	}
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.7", &eb); code != http.StatusServiceUnavailable || eb.Category != ShedDraining {
		t.Fatalf("query during drain: status %d category %q", code, eb.Category)
	}
	if n := srv.Drain(time.Second); n != 0 {
		t.Fatalf("idle drain canceled %d stragglers", n)
	}
}

func TestServerDeadlines(t *testing.T) {
	gen, cfg := testDesign(t)
	srv := NewServer(Config{MaxInFlight: 1, MaxQueue: 2})
	inject := &fault.Injector{}
	if err := srv.AddDesign(context.Background(), "d", gen.Design, gen.Workload, cfg, inject); err != nil {
		t.Fatalf("AddDesign: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Arm after warm-up (which consumed analysis ordinal 1): the next two
	// analyses stall until their contexts fire.
	inject.StallAnalyzeN = 2

	// Request 1 occupies the single in-flight slot, stalled until its own
	// deadline (analysis ordinal 2).
	type resp struct {
		code int
		body errorBody
	}
	r1 := make(chan resp, 1)
	go func() {
		var eb errorBody
		code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.7&deadline_ms=400", &eb)
		r1 <- resp{code, eb}
	}()
	// Wait until it holds the slot.
	d := srv.design("d")
	for d.adm.inFlight() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Request 2 queues behind it and its deadline expires in the queue: shed
	// with 503 + Retry-After, never started (no analysis ordinal consumed).
	var eb errorBody
	code, hdr := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.72&deadline_ms=100", &eb)
	if code != http.StatusServiceUnavailable || eb.Category != ShedDeadline {
		t.Fatalf("queued expiry: status %d category %q", code, eb.Category)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// Request 1 times out mid-analysis: 504 deadline.
	got1 := <-r1
	if got1.code != http.StatusGatewayTimeout || got1.body.Category != "deadline" {
		t.Fatalf("stalled request: status %d category %q", got1.code, got1.body.Category)
	}

	// The slot is free again and the stall prefix is spent at ordinal 3: a
	// normal query completes.
	var ok Result
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.74", &ok); code != http.StatusOK {
		t.Fatalf("post-timeout query: status %d", code)
	}

	snap := srv.StatsFor("d")
	if snap.TimedOut == 0 || snap.Shed == 0 {
		t.Fatalf("counters did not record the episode: %+v", snap)
	}

	// Injected admission failure sheds through the same client-visible path.
	inject.FailAdmitN = 1
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.74", &eb); code != http.StatusServiceUnavailable || eb.Category != ShedInjected {
		t.Fatalf("injected shed: status %d category %q", code, eb.Category)
	}
}

func TestServerBreakerDegradation(t *testing.T) {
	gen, cfg := testDesign(t)
	srv := NewServer(Config{BreakerTrips: 1, BreakerCooldown: time.Hour})
	var mu sync.Mutex
	tm := time.Unix(0, 0)
	srv.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return tm }
	inject := &fault.Injector{}
	if err := srv.AddDesign(context.Background(), "d", gen.Design, gen.Workload, cfg, inject); err != nil {
		t.Fatalf("AddDesign: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm-up consumed solve ordinal 1; fail solve 2 and its retry, so the
	// next primary query surfaces ErrNotConverged and trips the breaker.
	inject.FailCGSolveN = 2
	inject.FailRetry = true
	var eb errorBody
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.7", &eb); code != http.StatusInternalServerError || eb.Category != "not-converged" {
		t.Fatalf("tripping query: status %d category %q", code, eb.Category)
	}

	// Open breaker: the same query now runs on the Jacobi fallback, flagged
	// degraded and matching a direct Exec on a Jacobi-configured flow.
	var deg Result
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.7", &deg); code != http.StatusOK {
		t.Fatalf("degraded query: status %d", code)
	}
	if !deg.Degraded {
		t.Fatal("fallback result not flagged degraded")
	}
	jref := flow.New(gen.Design, gen.Workload, func() flow.Config {
		c := cfg
		c.Thermal.Precond = thermal.PrecondJacobi
		return c
	}())
	defer jref.Close()
	want, _, err := Exec(context.Background(), jref, Query{Kind: KindAnalyze, Utilization: 0.7})
	if err != nil {
		t.Fatalf("jacobi reference Exec: %v", err)
	}
	if deg.PeakRiseK != want.PeakRiseK {
		t.Fatalf("degraded result %g != jacobi reference %g (bit-exact)", deg.PeakRiseK, want.PeakRiseK)
	}
	var stz StatzResponse
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/statz", &stz); code != http.StatusOK || stz.Designs[0].Breaker != "open" {
		t.Fatalf("statz after trip: code %d breaker %q", code, stz.Designs[0].Breaker)
	}
	if stz.Designs[0].Degraded == 0 {
		t.Fatal("degraded counter not incremented")
	}

	// Degraded results are not cached: once the cooldown elapses and the
	// (now fault-free) primary probe succeeds, the same query is served by
	// the primary again, not from a stale Jacobi entry.
	mu.Lock()
	tm = tm.Add(2 * time.Hour)
	mu.Unlock()
	var rec Result
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/analyze?design=d&util=0.7", &rec); code != http.StatusOK {
		t.Fatalf("probe query: status %d", code)
	}
	if rec.Degraded || rec.Cached {
		t.Fatalf("recovered probe served degraded=%v cached=%v", rec.Degraded, rec.Cached)
	}
	if code, _ := getJSON(t, ts.Client(), ts.URL+"/statz", &stz); code != http.StatusOK || stz.Designs[0].Breaker != "closed" {
		t.Fatalf("breaker did not close after a clean probe: %q", stz.Designs[0].Breaker)
	}
}
