package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the HTTP handler exposing the query server:
//
//	GET /analyze?design=D&util=0.7[&full=1][&deadline_ms=N]
//	GET /delta?design=D&strategy=eri&rows=4         (or overhead=0.1)
//	GET /delta?design=D&strategy=hw&overhead=0.16
//	GET /sweep?design=D&overheads=0.05,0.1,0.2[&adaptive=1][&grid_scale=N]
//	GET /healthz   process liveness (always 200 while serving)
//	GET /readyz    admission readiness (503 once draining)
//	GET /statz     per-design fault/service counters
//
// Every query endpoint accepts deadline_ms overriding the configured default
// deadline; 0 disables the deadline for that request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, KindAnalyze)
	})
	mux.HandleFunc("/delta", func(w http.ResponseWriter, r *http.Request) {
		kind := Kind(r.URL.Query().Get("strategy"))
		if kind != KindERI && kind != KindHW {
			s.writeError(w, &httpStatusError{
				status: http.StatusBadRequest, category: "bad-request",
				msg: "strategy must be eri or hw",
			})
			return
		}
		s.serveQuery(w, r, kind)
	})
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, KindSweep)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Statz())
	})
	return mux
}

// serveQuery is the shared request path of every query endpoint: resolve the
// design, parse, admit, execute, classify.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, kind Kind) {
	name := r.URL.Query().Get("design")
	d := s.design(name)
	if d == nil {
		s.writeError(w, &httpStatusError{
			status: http.StatusNotFound, category: "unknown-design",
			msg: "design " + strconv.Quote(name) + " not registered",
		})
		return
	}
	q, err := ParseQuery(kind, r.URL.Query())
	if err != nil {
		s.writeError(w, err)
		return
	}

	// Track the request for drain accounting; once draining, shed before any
	// work. The injected admission failure (Injector.FailAdmitN) sheds at
	// the same point, exercising the same client-visible path.
	if !s.track.enter() {
		d.stats.AddShed()
		s.writeError(w, &shedError{reason: ShedDraining})
		return
	}
	defer s.track.exit()
	if d.fcfg.Thermal.Inject.FailAdmit() {
		d.stats.AddShed()
		s.writeError(w, &shedError{reason: ShedInjected})
		return
	}

	// The request context carries the per-request deadline and is linked to
	// the server's base context, so a hard drain cancels every in-flight and
	// queued query without the handler polling anything.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.base, cancel)
	defer stop()
	deadline := s.cfg.DefaultDeadline
	if v := r.URL.Query().Get("deadline_ms"); v != "" {
		ms, perr := strconv.Atoi(v)
		if perr != nil || ms < 0 {
			s.writeError(w, &httpStatusError{
				status: http.StatusBadRequest, category: "bad-request",
				msg: "parameter deadline_ms=" + strconv.Quote(v) + ": not a non-negative integer",
			})
			return
		}
		deadline = time.Duration(ms) * time.Millisecond
		if ms == 0 {
			deadline = -1 // explicit "no deadline"
		}
	}
	if deadline > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, deadline)
		defer cancelT()
	}

	release, err := d.adm.acquire(ctx, s.track.isDraining)
	if err != nil {
		// Never started: shed, with Retry-After as the backoff hint.
		d.stats.AddShed()
		s.writeError(w, err)
		return
	}
	defer release()
	d.stats.AddAdmitted()

	key := q.Key()
	if res := d.cache.get(key); res != nil {
		res.Design = d.name
		writeJSON(w, http.StatusOK, res)
		return
	}

	primary, probe := d.brk.route()
	fl := d.primary
	if !primary {
		fl = d.jacobiFallback()
		d.stats.AddDegraded()
	}
	res, cost, err := Exec(ctx, fl, q)
	d.brk.record(primary, probe, err)
	if err != nil {
		if _, body := classify(err); body.Category == "deadline" || body.Category == "canceled" {
			d.stats.AddTimedOut()
		}
		s.writeError(w, err)
		return
	}
	res.Design = d.name
	res.Degraded = !primary
	if ts := res.Triage; ts != nil {
		// Freshly computed adaptive sweep (cache hits returned above): fold
		// its triage work into the per-design /statz counters.
		d.adaptiveSweeps.Add(1)
		d.adaptiveCandidates.Add(int64(ts.Candidates))
		d.adaptiveTriaged.Add(int64(ts.Candidates - ts.Survivors))
		d.adaptiveExact.Add(int64(ts.ExactSolves))
	}
	if primary {
		// Degraded results are never cached: once the breaker closes, the
		// primary's bit-exact answer must not be shadowed by a Jacobi one.
		d.cache.put(key, res, cost)
	}
	writeJSON(w, http.StatusOK, res)
}

// DesignStatz is the /statz entry of one design.
type DesignStatz struct {
	Design string `json:"design"`
	// Breaker is the circuit-breaker state: closed, open or half-open.
	Breaker string `json:"breaker"`
	// CacheBytes is the accounted footprint of the solved-state LRU.
	CacheBytes int64 `json:"cache_bytes"`
	// CacheEntries is the number of resident cached results.
	CacheEntries int `json:"cache_entries"`
	// InFlight and Queued are the instantaneous admission-controller gauges.
	InFlight int   `json:"in_flight"`
	Queued   int64 `json:"queued"`

	// Baseline co-analysis scalars captured at warm-up: temperature-derated
	// timing and routing congestion of the resident baseline. Zero when the
	// design's flow runs with co-analysis off.
	BaselineCriticalPathPs float64 `json:"baseline_critical_path_ps"`
	BaselineWorstSlackPs   float64 `json:"baseline_worst_slack_ps"`
	BaselineHPWLUm         float64 `json:"baseline_hpwl_um"`
	BaselineOverflows      int     `json:"baseline_congestion_overflows"`

	// Adaptive-sweep triage counters, accumulated across freshly computed
	// adaptive sweep queries: how many grid candidates the coarse phase saw,
	// how many it pruned before the exact phase, and how many exact analyses
	// were actually paid for.
	AdaptiveSweeps     int64 `json:"adaptive_sweeps"`
	AdaptiveCandidates int64 `json:"adaptive_candidates"`
	AdaptiveTriaged    int64 `json:"adaptive_triaged"`
	AdaptiveExact      int64 `json:"adaptive_exact_solves"`

	// Counter semantics are documented on fault.StatsSnapshot: Admitted,
	// Shed, TimedOut, Degraded, Evicted are the service counters; the
	// solver-level MGSetupFailures, SolveRetries, PanicsContained and
	// Canceled tell the degradation story underneath them.
	MGSetupFailures uint64 `json:"mg_setup_failures"`
	SolveRetries    uint64 `json:"solve_retries"`
	PanicsContained uint64 `json:"panics_contained"`
	Canceled        uint64 `json:"canceled"`
	Admitted        uint64 `json:"admitted"`
	Shed            uint64 `json:"shed"`
	TimedOut        uint64 `json:"timed_out"`
	Degraded        uint64 `json:"degraded"`
	Evicted         uint64 `json:"evicted"`
}

// StatzResponse is the /statz payload.
type StatzResponse struct {
	Draining bool          `json:"draining"`
	Designs  []DesignStatz `json:"designs"`
}

// Statz assembles the observability snapshot, designs in registration order.
func (s *Server) Statz() StatzResponse {
	out := StatzResponse{Draining: s.Draining()}
	for _, name := range s.Designs() {
		d := s.design(name)
		if d == nil {
			continue
		}
		snap := d.stats.Snapshot()
		out.Designs = append(out.Designs, DesignStatz{
			Design:                 d.name,
			Breaker:                d.brk.current(),
			CacheBytes:             d.cache.footprint(),
			CacheEntries:           d.cache.entriesLen(),
			InFlight:               d.adm.inFlight(),
			Queued:                 d.adm.inQueue(),
			BaselineCriticalPathPs: d.baseCritPathPs,
			BaselineWorstSlackPs:   d.baseWorstSlackPs,
			BaselineHPWLUm:         d.baseHPWL,
			BaselineOverflows:      d.baseOverflows,
			AdaptiveSweeps:         d.adaptiveSweeps.Load(),
			AdaptiveCandidates:     d.adaptiveCandidates.Load(),
			AdaptiveTriaged:        d.adaptiveTriaged.Load(),
			AdaptiveExact:          d.adaptiveExact.Load(),
			MGSetupFailures:        snap.MGSetupFailures,
			SolveRetries:           snap.SolveRetries,
			PanicsContained:        snap.PanicsContained,
			Canceled:               snap.Canceled,
			Admitted:               snap.Admitted,
			Shed:                   snap.Shed,
			TimedOut:               snap.TimedOut,
			Degraded:               snap.Degraded,
			Evicted:                snap.Evicted,
		})
	}
	return out
}

// writeError classifies the error and writes the JSON error body; shed
// responses carry the Retry-After backoff hint.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, body := classify(err)
	if isShed(err) {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The encoder's error is unreportable at this point (headers are gone);
	// a failed write only ever means the client went away.
	_ = json.NewEncoder(w).Encode(v)
}
