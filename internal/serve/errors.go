package serve

import (
	"context"
	"errors"
	"net/http"

	"thermplace/internal/fault"
)

// Shed reasons, returned in the "category" field of 503 responses so clients
// (and the chaos harness) can distinguish why a query never started.
const (
	ShedQueueFull = "shed-queue-full" // the bounded queue was already full
	ShedDeadline  = "shed-deadline"   // the deadline expired while queued
	ShedDraining  = "shed-draining"   // the server is draining (SIGTERM)
	ShedInjected  = "shed-injected"   // fault.Injector.FailAdmitN probe
)

// shedError is an admission-control rejection: the query was never started.
type shedError struct {
	reason string // one of the Shed* categories
	cause  error  // the expired context error for ShedDeadline, else nil
}

func (e *shedError) Error() string {
	if e.cause != nil {
		return "serve: query shed (" + e.reason + "): " + e.cause.Error()
	}
	return "serve: query shed (" + e.reason + ")"
}

func (e *shedError) Unwrap() error { return e.cause }

// httpStatusError carries an explicit HTTP status and fault category for
// request-level failures (unknown design, malformed query).
type httpStatusError struct {
	status   int
	category string
	msg      string
}

func (e *httpStatusError) Error() string { return "serve: " + e.category + ": " + e.msg }

// errorBody is the JSON shape of every non-200 response. Category is the
// fault-taxonomy classification of the cause; the provenance fields are
// filled when the error carries a fault.ProvenanceError.
type errorBody struct {
	Error    string `json:"error"`
	Category string `json:"category"`
	Design   string `json:"design,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Point    int    `json:"point,omitempty"`
}

// classify maps an error to its HTTP status and fault-taxonomy category.
// Admission rejections are 503 (the client should retry after backoff),
// deadline expiries are 504, solver faults and contained panics are 500 with
// the precise category, so an error response always says which layer failed.
func classify(err error) (int, errorBody) {
	body := errorBody{Error: err.Error(), Category: "internal"}
	var pv *fault.ProvenanceError
	if errors.As(err, &pv) {
		body.Design, body.Strategy, body.Point = pv.Design, pv.Strategy, pv.Point
	}
	var shed *shedError
	var hse *httpStatusError
	var nc *fault.ErrNotConverged
	var se *fault.ErrSetup
	var pe *fault.ErrPanic
	switch {
	case errors.As(err, &shed):
		body.Category = shed.reason
		return http.StatusServiceUnavailable, body
	case errors.As(err, &hse):
		body.Category = hse.category
		return hse.status, body
	case errors.Is(err, fault.ErrBudgetExceeded), errors.Is(err, context.DeadlineExceeded):
		body.Category = "deadline"
		return http.StatusGatewayTimeout, body
	case errors.Is(err, fault.ErrCanceled), errors.Is(err, context.Canceled):
		body.Category = "canceled"
		return http.StatusServiceUnavailable, body
	case errors.As(err, &pe):
		body.Category = "panic"
		return http.StatusInternalServerError, body
	case errors.As(err, &nc):
		body.Category = "not-converged"
		return http.StatusInternalServerError, body
	case errors.As(err, &se):
		body.Category = "solver-setup"
		return http.StatusInternalServerError, body
	default:
		return http.StatusInternalServerError, body
	}
}

// shedStatus reports whether the error is an admission-control shed (the
// query never started), as opposed to a failure of a started query.
func isShed(err error) bool {
	var shed *shedError
	return errors.As(err, &shed)
}
