package serve

import (
	"container/list"
	"sync"

	"thermplace/internal/fault"
)

// resultCache is the per-design LRU of solved query results under a byte
// budget. The accounting unit of an entry is the memory of the solved
// analysis that produced it (flow.Analysis.MemoryBytes), so the budget
// models the resident solver state, not the serialized response size.
//
// Eviction is always safe: a missed query recomputes from the resident
// baseline through the same pure execution path and returns bit-identical
// values — the cache can serve stale-ordering, never stale-values, because
// every entry is keyed by the full canonical query (Query.Key) and results
// are pure functions of the query given the resident baseline. Degraded
// (fallback-flow) results are never inserted: once the breaker closes, the
// primary's answer must not be shadowed by a cached Jacobi one.
type resultCache struct {
	mu      sync.Mutex
	budget  int64 // <= 0 disables the cache entirely
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	stats   *fault.Stats
}

type cacheEntry struct {
	key  string
	res  *Result
	cost int64
}

func newResultCache(budget int64, stats *fault.Stats) *resultCache {
	return &resultCache{
		budget:  budget,
		ll:      list.New(),
		entries: map[string]*list.Element{},
		stats:   stats,
	}
}

// get returns the cached result for the key (marked as a cache hit) or nil.
func (c *resultCache) get(key string) *Result {
	if c.budget <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	// Shallow copy so the Cached flag does not contaminate the stored entry;
	// the payload slices are shared read-only.
	res := *el.Value.(*cacheEntry).res
	res.Cached = true
	return &res
}

// put inserts a result, evicting least-recently-used entries until the
// budget holds. An entry larger than the whole budget is not cached at all,
// and neither is a non-positive cost: a zero-cost entry would never trip the
// byte-based eviction loop, so a budget==0 cache (or a miscounted cost)
// could grow its entry count — and the map/list overhead the byte accounting
// ignores — without bound.
func (c *resultCache) put(key string, res *Result, cost int64) {
	if c.budget <= 0 || cost <= 0 || cost > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += cost - ent.cost
		ent.res, ent.cost = res, cost
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, cost: cost})
		c.bytes += cost
	}
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, ent.key)
		c.bytes -= ent.cost
		c.stats.AddEvicted()
	}
}

// footprint returns the current accounted bytes.
func (c *resultCache) footprint() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// entriesLen returns the number of resident entries (tests/observability).
func (c *resultCache) entriesLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
