package serve

import (
	"errors"
	"sync"
	"time"

	"thermplace/internal/fault"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed   breakerState = iota // primary (multigrid) flow in use
	breakerOpen                         // pinned to the Jacobi fallback
	breakerHalfOpen                     // cooldown over; one probe may retry
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// breaker guards a design's multigrid-preconditioned primary flow. After
// `trips` consecutive solver faults (ErrNotConverged / ErrSetup) it opens:
// queries are routed to the Jacobi fallback flow for the cooldown window.
// Once the cooldown elapses it half-opens: exactly one query probes the
// primary while the rest stay on the fallback; a clean probe closes the
// breaker, a faulted probe reopens it for another cooldown.
//
// Cancellations never move the automaton — an expired deadline says nothing
// about the solver's health.
type breaker struct {
	trips    int
	cooldown time.Duration
	now      func() time.Time

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive qualifying failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

func newBreaker(trips int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{trips: trips, cooldown: cooldown, now: now}
}

// route decides where the next query runs. primary=false routes the query to
// the Jacobi fallback (a degraded response). probe=true marks the query as
// the half-open probe; its outcome must be reported through record with the
// same flag.
func (b *breaker) route() (primary, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		fallthrough
	default: // breakerHalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// record reports the outcome of a routed query. Only primary outcomes move
// the automaton; fallback queries are outside its jurisdiction.
func (b *breaker) record(primary, probe bool, err error) {
	if !primary {
		return
	}
	qualifies := isSolverFault(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		switch {
		case err == nil:
			b.state = breakerClosed
			b.fails = 0
		case qualifies:
			b.state = breakerOpen
			b.openedAt = b.now()
		}
		// A canceled probe is inconclusive: stay half-open, the next query
		// probes again.
		return
	}
	if b.state != breakerClosed {
		return
	}
	switch {
	case err == nil:
		b.fails = 0
	case qualifies:
		b.fails++
		if b.fails >= b.trips {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.fails = 0
		}
	}
}

// current returns the state name for /statz.
func (b *breaker) current() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// isSolverFault reports whether the error is a genuine solver-health signal:
// a non-converged solve or a preconditioner setup failure. Cancellations,
// shed queries and input errors never qualify.
func isSolverFault(err error) bool {
	if err == nil {
		return false
	}
	var nc *fault.ErrNotConverged
	var se *fault.ErrSetup
	return errors.As(err, &nc) || errors.As(err, &se)
}
