package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"thermplace/internal/core"
	"thermplace/internal/flow"
	"thermplace/internal/geom"
	"thermplace/internal/hotspot"
	"thermplace/internal/netlist"
)

// Kind identifies a query type.
type Kind string

const (
	// KindAnalyze measures the design at one placement utilization.
	KindAnalyze Kind = "analyze"
	// KindERI applies the empty-row-insertion transform at the baseline's
	// hotspots and measures the result.
	KindERI Kind = "eri"
	// KindHW relaxes utilization to the requested overhead and applies the
	// hotspot-wrapper transform on top (the paper's HW strategy).
	KindHW Kind = "hw"
	// KindSweep runs a small efficiency sweep over a list of overheads.
	KindSweep Kind = "sweep"
)

// serveAdaptiveMargin is the triage margin of adaptive sweep queries, as a
// fraction of the estimated rise range. The server favours front safety over
// triage aggressiveness: the margin comfortably exceeds the calibrated
// coarse-estimate error observed across the scenario families, so the served
// front is the exact front for any resident design.
const serveAdaptiveMargin = 0.25

// Query is one parsed what-if question against a resident design. Its
// canonical form (Key) is the cache key: two requests that parse to the same
// Query are interchangeable.
type Query struct {
	Kind Kind
	// Utilization is the target placement utilization (KindAnalyze; zero
	// means the design's baseline utilization).
	Utilization float64
	// Rows is the empty-row count (KindERI; zero derives it from Overhead).
	Rows int
	// Overhead is the fractional area overhead (KindHW, and KindERI when
	// Rows is zero).
	Overhead float64
	// Overheads are the sweep overheads (KindSweep; empty uses the paper's
	// Figure 6 range), kept sorted so equivalent sweeps share a cache key.
	Overheads []float64
	// Adaptive selects the two-phase multi-fidelity sweep (KindSweep): the
	// overhead axis is densified GridScale times, candidates are triaged on
	// coarse-grid estimates and only the estimated Pareto front is measured
	// exactly. Every returned point is still an exact measurement.
	Adaptive bool
	// GridScale is the adaptive densification factor (KindSweep with
	// Adaptive; zero selects 3).
	GridScale int
	// Full requests the solved surface temperature map in the response.
	Full bool
}

// Key returns the canonical cache key of the query. Floats are formatted
// with strconv 'g'/-1, which round-trips float64 exactly — two queries share
// a key if and only if they are the same computation.
func (q Query) Key() string {
	var b strings.Builder
	b.WriteString(string(q.Kind))
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	switch q.Kind {
	case KindAnalyze:
		b.WriteString("?util=" + ff(q.Utilization))
	case KindERI:
		b.WriteString("?rows=" + strconv.Itoa(q.Rows) + "&overhead=" + ff(q.Overhead))
	case KindHW:
		b.WriteString("?overhead=" + ff(q.Overhead))
	case KindSweep:
		b.WriteString("?overheads=")
		for i, ov := range q.Overheads {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ff(ov))
		}
		if q.Adaptive {
			b.WriteString("&adaptive=1&scale=" + strconv.Itoa(q.GridScale))
		}
	}
	if q.Full {
		b.WriteString("&full=1")
	}
	return b.String()
}

// ParseQuery builds a Query of the given kind from URL parameters. Errors
// are *httpStatusError with status 400.
func ParseQuery(kind Kind, vals url.Values) (Query, error) {
	q := Query{Kind: kind}
	badReq := func(format string, a ...any) (Query, error) {
		return Query{}, &httpStatusError{status: http.StatusBadRequest, category: "bad-request", msg: fmt.Sprintf(format, a...)}
	}
	getFloat := func(name string, dst *float64) error {
		s := vals.Get(name)
		if s == "" {
			return nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("parameter %s=%q: %w", name, s, err)
		}
		*dst = v
		return nil
	}
	switch kind {
	case KindAnalyze:
		if err := getFloat("util", &q.Utilization); err != nil {
			return badReq("%v", err)
		}
		if q.Utilization < 0 || q.Utilization > 1 {
			return badReq("utilization %g outside (0, 1]", q.Utilization)
		}
	case KindERI:
		if s := vals.Get("rows"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				return badReq("parameter rows=%q: not a non-negative integer", s)
			}
			q.Rows = n
		}
		if err := getFloat("overhead", &q.Overhead); err != nil {
			return badReq("%v", err)
		}
		if q.Rows == 0 && q.Overhead <= 0 {
			return badReq("eri requires rows or a positive overhead")
		}
	case KindHW:
		if err := getFloat("overhead", &q.Overhead); err != nil {
			return badReq("%v", err)
		}
		if q.Overhead <= 0 {
			return badReq("hw requires a positive overhead")
		}
	case KindSweep:
		if s := vals.Get("overheads"); s != "" {
			for _, part := range strings.Split(s, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
				if err != nil || v <= 0 {
					return badReq("parameter overheads: bad element %q", part)
				}
				q.Overheads = append(q.Overheads, v)
			}
			q.Overheads = sortedOverheads(q.Overheads)
		}
		if s := vals.Get("adaptive"); s != "" {
			adaptive, err := strconv.ParseBool(s)
			if err != nil {
				return badReq("parameter adaptive=%q: not a boolean", s)
			}
			q.Adaptive = adaptive
		}
		if s := vals.Get("grid_scale"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				return badReq("parameter grid_scale=%q: not a positive integer", s)
			}
			if !q.Adaptive {
				return badReq("grid_scale requires adaptive=1")
			}
			q.GridScale = n
		}
	default:
		return badReq("unknown query kind %q", kind)
	}
	if s := vals.Get("full"); s != "" {
		full, err := strconv.ParseBool(s)
		if err != nil {
			return badReq("parameter full=%q: not a boolean", s)
		}
		q.Full = full
	}
	return q, nil
}

// HotspotSummary is the JSON form of one detected hotspot.
type HotspotSummary struct {
	ID        int     `json:"id"`
	PeakRiseK float64 `json:"peak_rise_k"`
	MeanRiseK float64 `json:"mean_rise_k"`
	AreaUm2   float64 `json:"area_um2"`
	Cells     int     `json:"cells"`
}

// SweepPoint is the JSON form of one efficiency-sweep point.
type SweepPoint struct {
	Strategy      string  `json:"strategy"`
	AreaOverhead  float64 `json:"area_overhead"`
	TempReduction float64 `json:"temp_reduction"`
	PeakRiseK     float64 `json:"peak_rise_k"`
	Rows          int     `json:"rows,omitempty"`
	Utilization   float64 `json:"utilization"`
	// Aspect is the floorplan aspect ratio the point was placed at (adaptive
	// sweeps; zero means the flow's configured aspect).
	Aspect float64 `json:"aspect,omitempty"`

	// Co-analysis metrics: temperature-derated timing and routing congestion
	// measured at this point's placement and solved thermal field.
	CriticalPathPs      float64 `json:"critical_path_ps"`
	WorstSlackPs        float64 `json:"worst_slack_ps"`
	HPWLUm              float64 `json:"hpwl_um"`
	CongestionOverflows int     `json:"congestion_overflows"`
	CongestionMaxUtil   float64 `json:"congestion_max_util"`
	// Pareto marks points on the multi-objective Pareto front over
	// (area overhead, peak rise, critical path, HPWL, overflows).
	Pareto bool `json:"pareto,omitempty"`
}

// TriageSummary is the JSON form of an adaptive sweep's triage statistics:
// how many candidates the coarse phase enumerated, how many survived to the
// exact phase, and what each phase cost in solver work.
type TriageSummary struct {
	Candidates   int     `json:"candidates"`
	Survivors    int     `json:"survivors"`
	Anchors      int     `json:"anchors"`
	CoarseSolves int     `json:"coarse_solves"`
	ExactSolves  int     `json:"exact_solves"`
	MaxEstErrK   float64 `json:"max_est_err_k"`
}

// Result is the JSON response of a completed query. Float64 values survive
// the JSON round trip exactly (encoding/json emits the shortest decimal that
// parses back to the same bits), which is what lets the chaos harness assert
// bit-identity between served responses and direct flow calls.
type Result struct {
	Design string `json:"design"`
	Kind   Kind   `json:"kind"`
	Query  string `json:"query"`
	// Degraded marks a response computed on the Jacobi fallback flow behind
	// an open circuit breaker: numerically sound, but not bit-identical to
	// the multigrid primary.
	Degraded bool `json:"degraded"`
	// Cached marks a response served from the solved-state LRU.
	Cached bool `json:"cached"`

	Utilization   float64 `json:"utilization,omitempty"`
	AreaOverhead  float64 `json:"area_overhead,omitempty"`
	Rows          int     `json:"rows,omitempty"`
	PeakRiseK     float64 `json:"peak_rise_k,omitempty"`
	TempReduction float64 `json:"temp_reduction,omitempty"`
	TotalPowerW   float64 `json:"total_power_w,omitempty"`

	// Co-analysis metrics of the analyzed point (the baseline, for sweeps):
	// temperature-derated timing and routing congestion. Zero when the flow
	// was configured with co-analysis off.
	CriticalPathPs      float64 `json:"critical_path_ps,omitempty"`
	WorstSlackPs        float64 `json:"worst_slack_ps,omitempty"`
	HPWLUm              float64 `json:"hpwl_um,omitempty"`
	CongestionOverflows int     `json:"congestion_overflows,omitempty"`
	CongestionMaxUtil   float64 `json:"congestion_max_util,omitempty"`

	Hotspots []HotspotSummary `json:"hotspots,omitempty"`
	Points   []SweepPoint     `json:"points,omitempty"`
	// Triage summarizes the coarse-grid triage of an adaptive sweep.
	Triage *TriageSummary `json:"triage,omitempty"`
	// Surface is the solved surface temperature-rise map in kelvin, row-major
	// [ny][nx] (present when the query asked full=1).
	Surface [][]float64 `json:"surface,omitempty"`
}

// Exec runs one query against a flow. It is a pure function of the flow's
// resident baseline and the query: every thermal solve warm-starts from a
// lineage that begins at the baseline and lives entirely inside this call,
// so the result is bit-identical no matter how many other queries run
// concurrently, in what order, or whether a cached intermediate was evicted.
// That property is the contract the chaos harness checks — a served response
// must equal a direct Exec on an equivalently configured flow.
//
// The returned cost is the memory accounting of the solved state behind the
// result (flow.Analysis.MemoryBytes), the unit of the server's LRU budget.
func Exec(ctx context.Context, f *flow.Flow, q Query) (*Result, int64, error) {
	baseline, err := f.AnalyzeBaselineCtx(ctx)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: baseline: %w", err)
	}
	baseRise := baseline.Thermal.PeakRise
	baseArea := baseline.Placement.FP.CoreArea()
	res := &Result{Kind: q.Kind, Query: q.Key()}

	finish := func(an *flow.Analysis, rows int) (*Result, int64, error) {
		res.Utilization = f.Config.Utilization / (an.Placement.FP.CoreArea() / baseArea)
		res.AreaOverhead = an.Placement.FP.CoreArea()/baseArea - 1
		res.Rows = rows
		res.PeakRiseK = an.Thermal.PeakRise
		if baseRise > 0 {
			res.TempReduction = (baseRise - an.Thermal.PeakRise) / baseRise
		}
		res.TotalPowerW = an.Power.Total()
		res.HPWLUm = an.HPWL
		if an.Timing != nil {
			res.CriticalPathPs = an.Timing.CriticalPathPs
			res.WorstSlackPs = an.Timing.SlackPs
		}
		if an.Congestion != nil {
			res.CongestionOverflows = an.Congestion.Overflows
			res.CongestionMaxUtil = an.Congestion.MaxUtilization
		}
		for _, h := range an.Hotspots {
			res.Hotspots = append(res.Hotspots, HotspotSummary{
				ID: h.ID, PeakRiseK: h.PeakRise, MeanRiseK: h.MeanRise,
				AreaUm2: h.AreaUm2, Cells: len(h.Cells),
			})
		}
		if q.Full {
			res.Surface = gridRows(an.Thermal.RiseMap())
		}
		return res, an.MemoryBytes(), nil
	}

	switch q.Kind {
	case KindAnalyze:
		util := q.Utilization
		if util == 0 {
			util = f.Config.Utilization
		}
		// ReflowAt at the baseline utilization returns the cached baseline
		// placement with an empty delta, which AnalyzeWithCtx resolves to the
		// cached baseline analysis — the no-work fast path.
		p, delta, err := f.ReflowAt(util)
		if err != nil {
			return nil, 0, fmt.Errorf("serve: analyze at %g: %w", util, err)
		}
		an, err := f.AnalyzeWithCtx(ctx, p, flow.AnalyzeOptions{Parent: baseline, Delta: delta})
		if err != nil {
			return nil, 0, fmt.Errorf("serve: analyze at %g: %w", util, err)
		}
		return finish(an, 0)

	case KindERI:
		rows := q.Rows
		if rows == 0 {
			rows = core.RowsForAreaOverhead(baseline.Placement, q.Overhead)
		}
		p, delta, err := core.EmptyRowInsertionDelta(baseline.Placement, baseline.Hotspots, core.DefaultERIOptions(rows))
		if err != nil {
			return nil, 0, fmt.Errorf("serve: eri %d rows: %w", rows, err)
		}
		an, err := f.AnalyzeWithCtx(ctx, p, flow.AnalyzeOptions{Parent: baseline, Delta: delta})
		if err != nil {
			return nil, 0, fmt.Errorf("serve: eri %d rows: %w", rows, err)
		}
		return finish(an, rows)

	case KindHW:
		// Mirror the sweep's HW task: relax utilization to the overhead,
		// analyze the Default placement against the baseline, then wrap the
		// tight hotspots of that intermediate and analyze the wrapped
		// placement against it — the lineage chain lives inside this call.
		util := f.Config.Utilization / (1 + q.Overhead)
		p, delta, err := f.ReflowAt(util)
		if err != nil {
			return nil, 0, fmt.Errorf("serve: hw at %g: %w", q.Overhead, err)
		}
		an, err := f.AnalyzeWithCtx(ctx, p, flow.AnalyzeOptions{Parent: baseline, Delta: delta})
		if err != nil {
			return nil, 0, fmt.Errorf("serve: hw at %g: %w", q.Overhead, err)
		}
		spots := hotspot.Detect(an.Thermal.RiseMap(), hotspot.Options{ThresholdFrac: 0.75, MinCells: 2})
		if len(spots) == 0 {
			return nil, 0, &httpStatusError{
				status:   http.StatusUnprocessableEntity,
				category: "no-hotspots",
				msg:      fmt.Sprintf("no tight hotspots at overhead %g; nothing to wrap", q.Overhead),
			}
		}
		wopts := core.DefaultWrapperOptions(func(inst *netlist.Instance) float64 {
			return an.Power.InstancePower(inst)
		})
		hp, hdelta, err := core.HotspotWrapperDelta(an.Placement, spots, wopts)
		if err != nil {
			return nil, 0, fmt.Errorf("serve: hw at %g: %w", q.Overhead, err)
		}
		han, err := f.AnalyzeWithCtx(ctx, hp, flow.AnalyzeOptions{Parent: an, Delta: hdelta})
		if err != nil {
			return nil, 0, fmt.Errorf("serve: hw at %g: %w", q.Overhead, err)
		}
		return finish(han, 0)

	case KindSweep:
		// Workers: 1 — the server's concurrency unit is the query, and the
		// admission controller's in-flight bound must bound solver work; a
		// sweep fanning out internally would break that accounting.
		sopts := core.SweepOptions{
			Overheads:   q.Overheads,
			Workers:     1,
			Incremental: true,
		}
		if q.Adaptive {
			scale := q.GridScale
			if scale == 0 {
				scale = 3
			}
			sopts.Adaptive = &core.AdaptiveOptions{
				GridScale:    scale,
				Margin:       serveAdaptiveMargin,
				CoarseFactor: 2,
			}
		}
		sres, err := core.SweepEfficiencyCtx(ctx, f, sopts)
		if err != nil {
			return nil, 0, fmt.Errorf("serve: sweep: %w", err)
		}
		res.Utilization = sres.BaselineUtilization
		res.PeakRiseK = baseRise
		res.TotalPowerW = baseline.Power.Total()
		res.HPWLUm = baseline.HPWL
		if baseline.Timing != nil {
			res.CriticalPathPs = baseline.Timing.CriticalPathPs
			res.WorstSlackPs = baseline.Timing.SlackPs
		}
		if baseline.Congestion != nil {
			res.CongestionOverflows = baseline.Congestion.Overflows
			res.CongestionMaxUtil = baseline.Congestion.MaxUtilization
		}
		pareto := map[int]bool{}
		for _, idx := range sres.ParetoFront() {
			pareto[idx] = true
		}
		for i, pt := range sres.Points {
			res.Points = append(res.Points, SweepPoint{
				Strategy:            string(pt.Strategy),
				AreaOverhead:        pt.AreaOverhead,
				TempReduction:       pt.TempReduction,
				PeakRiseK:           pt.PeakRise,
				Rows:                pt.Rows,
				Utilization:         pt.Utilization,
				Aspect:              pt.Aspect,
				CriticalPathPs:      pt.CriticalPathPs,
				WorstSlackPs:        pt.WorstSlackPs,
				HPWLUm:              pt.HPWL,
				CongestionOverflows: pt.CongestionOverflows,
				CongestionMaxUtil:   pt.CongestionMaxUtil,
				Pareto:              pareto[i],
			})
		}
		if ts := sres.Triage; ts != nil {
			res.Triage = &TriageSummary{
				Candidates:   ts.Candidates,
				Survivors:    ts.Survivors,
				Anchors:      ts.Anchors,
				CoarseSolves: ts.CoarseSolves,
				ExactSolves:  ts.ExactSolves,
				MaxEstErrK:   ts.MaxEstErrC,
			}
		}
		// No analyses are retained (KeepAnalyses false): charge a flat
		// summary cost instead of solver-state bytes.
		return res, 2048 + 512*int64(len(res.Points)), nil

	default:
		return nil, 0, &httpStatusError{status: http.StatusBadRequest, category: "bad-request", msg: fmt.Sprintf("unknown query kind %q", q.Kind)}
	}
}

// gridRows converts a grid to row-major [ny][nx] JSON-ready rows.
func gridRows(g *geom.Grid) [][]float64 {
	rows := make([][]float64, g.NY)
	for iy := 0; iy < g.NY; iy++ {
		row := make([]float64, g.NX)
		for ix := 0; ix < g.NX; ix++ {
			row[ix] = g.At(ix, iy)
		}
		rows[iy] = row
	}
	return rows
}
