// Package fault is the robustness layer of the analysis pipeline: the typed
// error taxonomy every solver and flow stage reports through, the counters
// that record graceful-degradation events, and the deterministic
// fault-injection probe points the bench harness uses to prove that
// cancellation, panic containment and solver degradation actually work.
//
// The package sits below every other internal package (it imports only the
// standard library), so sparse, thermal, flow and core can all return its
// errors without import cycles. Callers classify failures with errors.Is /
// errors.As:
//
//	errors.Is(err, fault.ErrCanceled)        // the context fired
//	errors.Is(err, fault.ErrBudgetExceeded)  // ... because a deadline passed
//	errors.As(err, &ncErr)                   // *fault.ErrNotConverged
//	errors.As(err, &setupErr)                // *fault.ErrSetup
//	errors.As(err, &panicErr)                // *fault.ErrPanic
//	errors.As(err, &provErr)                 // *fault.ProvenanceError
package fault

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrCanceled is the sentinel every cancellation-induced failure matches via
// errors.Is: an analysis aborted because its context fired, not because the
// computation itself went wrong.
var ErrCanceled = errors.New("fault: analysis canceled")

// ErrBudgetExceeded is the sentinel matched (in addition to ErrCanceled) when
// the cancellation cause was an expired deadline — a -timeout flag or a
// context.WithTimeout budget — rather than an explicit cancel.
var ErrBudgetExceeded = errors.New("fault: time budget exceeded")

// canceledError wraps the context cause so both the taxonomy sentinels and
// the standard context errors keep matching through errors.Is.
type canceledError struct{ cause error }

func (e *canceledError) Error() string { return "fault: analysis canceled: " + e.cause.Error() }
func (e *canceledError) Unwrap() error { return e.cause }
func (e *canceledError) Is(target error) bool {
	switch target {
	case ErrCanceled:
		return true
	case ErrBudgetExceeded:
		return errors.Is(e.cause, context.DeadlineExceeded)
	}
	return false
}

// Canceled wraps a context cause (ctx.Err()) into the taxonomy: the result
// matches ErrCanceled, matches ErrBudgetExceeded when the cause was a
// deadline, and still matches the original context error. A nil cause is
// treated as context.Canceled.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &canceledError{cause: cause}
}

// ErrNotConverged reports an iterative solve that exhausted its iteration
// budget without reaching the residual tolerance. Iters is the number of
// iterations spent and Residual the relative residual they ended on.
type ErrNotConverged struct {
	Iters    int
	Residual float64
}

func (e *ErrNotConverged) Error() string {
	return fmt.Sprintf("fault: solver did not converge in %d iterations (residual %g)", e.Iters, e.Residual)
}

// ErrSetup reports a solver or preconditioner construction/refresh failure —
// a malformed stencil, a non-positive-definite coarse factorization — as
// distinct from a failure of the solve itself. Stage names the construction
// step that failed.
type ErrSetup struct {
	Stage string
	Err   error
}

func (e *ErrSetup) Error() string {
	if e.Err == nil {
		return "fault: solver setup failed: " + e.Stage
	}
	return "fault: solver setup (" + e.Stage + "): " + e.Err.Error()
}
func (e *ErrSetup) Unwrap() error { return e.Err }

// ErrPanic is a contained panic converted into a located error: a worker
// goroutine or analysis task crashed, the recovery captured where and with
// what value, and the failure now propagates as an ordinary error instead of
// killing the process.
type ErrPanic struct {
	// Where locates the recovery site, e.g. "sparse.Pool worker 3" or
	// "core: sweep task 2".
	Where string
	// Value is the value the code panicked with.
	Value any
	// Stack is the stack trace captured at recovery.
	Stack []byte
}

func (e *ErrPanic) Error() string {
	return fmt.Sprintf("fault: panic in %s: %v", e.Where, e.Value)
}

// Recovered converts a recover() value into an *ErrPanic located at where,
// capturing the current stack. A value that already is an *ErrPanic (a panic
// rethrown across a worker boundary) is returned unchanged so the original
// location survives.
func Recovered(where string, value any) *ErrPanic {
	if pe, ok := value.(*ErrPanic); ok {
		return pe
	}
	return &ErrPanic{Where: where, Value: value, Stack: debug.Stack()}
}

// ProvenanceError tags a pipeline failure with where in the experiment it
// happened: which design, which strategy, and which sweep point. The wrapped
// error stays reachable through errors.Is/As.
type ProvenanceError struct {
	// Design is the design name the analysis ran on.
	Design string
	// Strategy is the sweep strategy of the failing point ("default", "eri",
	// "hw", or a stage name like "baseline").
	Strategy string
	// Point is the index of the failing point within its strategy's sweep
	// axis (overhead index for default/hw, row-count index for eri).
	Point int
	Err   error
}

func (e *ProvenanceError) Error() string {
	return fmt.Sprintf("%s/%s point %d: %v", e.Design, e.Strategy, e.Point, e.Err)
}
func (e *ProvenanceError) Unwrap() error { return e.Err }

// WithProvenance wraps err with experiment provenance; a nil err stays nil.
func WithProvenance(err error, design, strategy string, point int) error {
	if err == nil {
		return nil
	}
	return &ProvenanceError{Design: design, Strategy: strategy, Point: point, Err: err}
}
