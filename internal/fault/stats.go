package fault

import "sync/atomic"

// Stats counts the robustness events of one analysis owner (a flow, or a
// standalone thermal solver): every graceful degradation, contained panic
// and cancellation is recorded here so callers can observe that a result was
// produced on a fallback path. All methods are safe for concurrent use and
// nil-safe, so solvers can record unconditionally whether or not an owner
// attached a Stats.
type Stats struct {
	mgSetupFailures atomic.Uint64
	solveRetries    atomic.Uint64
	panicsContained atomic.Uint64
	canceled        atomic.Uint64
}

// AddMGSetupFailure records a multigrid setup/refresh failure that degraded
// the solver to the Jacobi preconditioner.
func (s *Stats) AddMGSetupFailure() {
	if s != nil {
		s.mgSetupFailures.Add(1)
	}
}

// AddSolveRetry records a non-converged preconditioned solve retried on the
// Jacobi fallback with a raised iteration budget.
func (s *Stats) AddSolveRetry() {
	if s != nil {
		s.solveRetries.Add(1)
	}
}

// AddPanicContained records a panic converted into a typed error instead of
// crashing the process.
func (s *Stats) AddPanicContained() {
	if s != nil {
		s.panicsContained.Add(1)
	}
}

// AddCanceled records a solve or analysis aborted by its context.
func (s *Stats) AddCanceled() {
	if s != nil {
		s.canceled.Add(1)
	}
}

// StatsSnapshot is a plain-value copy of the counters at one instant.
type StatsSnapshot struct {
	// MGSetupFailures counts multigrid setup/refresh failures degraded to
	// the Jacobi preconditioner.
	MGSetupFailures uint64
	// SolveRetries counts non-converged solves retried with Jacobi and a
	// raised iteration budget.
	SolveRetries uint64
	// PanicsContained counts panics converted into typed errors.
	PanicsContained uint64
	// Canceled counts solves aborted by context cancellation.
	Canceled uint64
}

// Snapshot returns the current counter values; a nil Stats reads as zero.
func (s *Stats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		MGSetupFailures: s.mgSetupFailures.Load(),
		SolveRetries:    s.solveRetries.Load(),
		PanicsContained: s.panicsContained.Load(),
		Canceled:        s.canceled.Load(),
	}
}
