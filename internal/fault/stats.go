package fault

import "sync/atomic"

// Stats counts the robustness events of one analysis owner (a flow, a
// standalone thermal solver, or a query server design): every graceful
// degradation, contained panic and cancellation is recorded here so callers
// can observe that a result was produced on a fallback path. The service
// counters (admitted, shed, timed-out, degraded, evicted) record the
// admission-control and graceful-degradation decisions of a long-running
// query server on the same collector, so one snapshot tells the whole
// robustness story of a design. All methods are safe for concurrent use and
// nil-safe, so solvers can record unconditionally whether or not an owner
// attached a Stats.
type Stats struct {
	mgSetupFailures atomic.Uint64
	solveRetries    atomic.Uint64
	panicsContained atomic.Uint64
	canceled        atomic.Uint64

	admitted atomic.Uint64
	shed     atomic.Uint64
	timedOut atomic.Uint64
	degraded atomic.Uint64
	evicted  atomic.Uint64
}

// AddMGSetupFailure records a multigrid setup/refresh failure that degraded
// the solver to the Jacobi preconditioner.
func (s *Stats) AddMGSetupFailure() {
	if s != nil {
		s.mgSetupFailures.Add(1)
	}
}

// AddSolveRetry records a non-converged preconditioned solve retried on the
// Jacobi fallback with a raised iteration budget.
func (s *Stats) AddSolveRetry() {
	if s != nil {
		s.solveRetries.Add(1)
	}
}

// AddPanicContained records a panic converted into a typed error instead of
// crashing the process.
func (s *Stats) AddPanicContained() {
	if s != nil {
		s.panicsContained.Add(1)
	}
}

// AddCanceled records a solve or analysis aborted by its context.
func (s *Stats) AddCanceled() {
	if s != nil {
		s.canceled.Add(1)
	}
}

// AddAdmitted records a query that passed admission control and started.
func (s *Stats) AddAdmitted() {
	if s != nil {
		s.admitted.Add(1)
	}
}

// AddShed records a query rejected by admission control — a full queue, an
// already-expired deadline, or a draining server — before any work ran.
func (s *Stats) AddShed() {
	if s != nil {
		s.shed.Add(1)
	}
}

// AddTimedOut records an admitted query whose deadline (or client) canceled
// it mid-analysis.
func (s *Stats) AddTimedOut() {
	if s != nil {
		s.timedOut.Add(1)
	}
}

// AddDegraded records a query served on a fallback path (for example the
// Jacobi flow behind an open multigrid circuit breaker).
func (s *Stats) AddDegraded() {
	if s != nil {
		s.degraded.Add(1)
	}
}

// AddEvicted records a solved-state cache entry dropped to stay inside the
// memory budget; the next query for it re-derives the state via the
// warm-start fallback.
func (s *Stats) AddEvicted() {
	if s != nil {
		s.evicted.Add(1)
	}
}

// StatsSnapshot is a plain-value copy of the counters at one instant.
type StatsSnapshot struct {
	// MGSetupFailures counts multigrid setup/refresh failures degraded to
	// the Jacobi preconditioner.
	MGSetupFailures uint64
	// SolveRetries counts non-converged solves retried with Jacobi and a
	// raised iteration budget.
	SolveRetries uint64
	// PanicsContained counts panics converted into typed errors.
	PanicsContained uint64
	// Canceled counts solves aborted by context cancellation.
	Canceled uint64
	// Admitted counts queries that passed admission control and started.
	Admitted uint64
	// Shed counts queries rejected before any work ran (full queue, expired
	// deadline, draining server).
	Shed uint64
	// TimedOut counts admitted queries canceled mid-analysis by their
	// deadline or client.
	TimedOut uint64
	// Degraded counts queries served on a fallback path.
	Degraded uint64
	// Evicted counts solved-state cache entries dropped for memory budget.
	Evicted uint64
}

// Snapshot returns the current counter values; a nil Stats reads as zero.
func (s *Stats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		MGSetupFailures: s.mgSetupFailures.Load(),
		SolveRetries:    s.solveRetries.Load(),
		PanicsContained: s.panicsContained.Load(),
		Canceled:        s.canceled.Load(),
		Admitted:        s.admitted.Load(),
		Shed:            s.shed.Load(),
		TimedOut:        s.timedOut.Load(),
		Degraded:        s.degraded.Load(),
		Evicted:         s.evicted.Load(),
	}
}
