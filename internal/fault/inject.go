package fault

import (
	"errors"
	"sync/atomic"
)

// Injector is a set of deterministic fault-injection probe points. The zero
// value (and a nil *Injector) injects nothing; tests arm exactly the faults
// they want and wire the injector into thermal.Config / flow.Config before
// the first analysis. Determinism comes from counters, not randomness: "the
// Nth CG solve" is the Nth call against this injector, shared across every
// solver it is wired into, so with a sequential pipeline (Workers=1, or
// probing solve 1 — always the baseline) the probed site is exactly
// reproducible.
//
// All probe methods are nil-safe and safe for concurrent use.
type Injector struct {
	// FailCGSolveN makes the preconditioned attempt of the Nth (1-based)
	// thermal CG solve report ErrNotConverged, which engages the solver's
	// Jacobi degradation path. Zero disables.
	FailCGSolveN int
	// FailRetry additionally fails the Jacobi retry of that same solve, so
	// the ErrNotConverged surfaces through the pipeline instead of being
	// absorbed by the degradation.
	FailRetry bool
	// StallCGSolveN makes the Nth (1-based) thermal CG solve block until its
	// context is canceled (it then reports ErrCanceled). With a context that
	// never fires the solve blocks forever — always pair this probe with a
	// cancelable context. Zero disables.
	StallCGSolveN int
	// PanicCGSolveN makes the Nth (1-based) thermal CG solve panic inside a
	// pool task, exercising the panic-containment path. Zero disables.
	PanicCGSolveN int
	// FailMGSetup makes every multigrid refresh report ErrSetup, forcing the
	// thermal solver onto its permanent Jacobi fallback.
	FailMGSetup bool
	// CorruptPowerW, when nonzero, adds this many watts to the first cell of
	// the first power map built through the flow — a deliberate corruption
	// the cross-implementation equality checks must catch.
	CorruptPowerW float64
	// StallAnalyzeN makes the first N (1-based ordinals 1..N) flow analyses
	// through this injector block until their context is canceled (they then
	// report ErrCanceled). Stalling a prefix rather than a single ordinal is
	// what lets the service chaos harness create deterministic overload: the
	// first N admitted queries park in their analysis, occupying every
	// in-flight slot, until their deadlines fire. With a context that never
	// fires a stalled analysis blocks forever — always pair this probe with
	// cancelable contexts. Zero disables.
	StallAnalyzeN int
	// FailAdmitN makes the first N (1-based ordinals 1..N) admission
	// attempts against this injector report a full queue, so the query is
	// shed before any work runs. It drives the service layer's load-shedding
	// path deterministically, without needing real queue pressure. Zero
	// disables.
	FailAdmitN int

	solves    atomic.Int64
	powerMaps atomic.Int64
	analyses  atomic.Int64
	admits    atomic.Int64
}

// NextSolve advances and returns the 1-based thermal-solve ordinal; 0 from a
// nil injector.
func (in *Injector) NextSolve() int {
	if in == nil {
		return 0
	}
	return int(in.solves.Add(1))
}

// FailSolve reports whether solve number n should report non-convergence on
// the given attempt (0 = the preconditioned attempt, 1 = the Jacobi retry).
func (in *Injector) FailSolve(n, attempt int) bool {
	if in == nil || in.FailCGSolveN == 0 || n != in.FailCGSolveN {
		return false
	}
	return attempt == 0 || in.FailRetry
}

// StallSolve reports whether solve number n should block until cancellation.
func (in *Injector) StallSolve(n int) bool {
	return in != nil && in.StallCGSolveN != 0 && n == in.StallCGSolveN
}

// PanicSolve reports whether solve number n should panic inside a pool task.
func (in *Injector) PanicSolve(n int) bool {
	return in != nil && in.PanicCGSolveN != 0 && n == in.PanicCGSolveN
}

// MGSetupError returns the injected multigrid setup failure, or nil when the
// probe is unarmed.
func (in *Injector) MGSetupError() error {
	if in == nil || !in.FailMGSetup {
		return nil
	}
	return &ErrSetup{Stage: "refresh", Err: errors.New("fault: injected multigrid setup failure")}
}

// NextAnalyze advances and returns the 1-based flow-analysis ordinal; 0 from
// a nil injector.
func (in *Injector) NextAnalyze() int {
	if in == nil {
		return 0
	}
	return int(in.analyses.Add(1))
}

// StallAnalyze reports whether analysis number n should block until its
// context is canceled (n within the armed 1..StallAnalyzeN prefix).
func (in *Injector) StallAnalyze(n int) bool {
	return in != nil && in.StallAnalyzeN != 0 && n >= 1 && n <= in.StallAnalyzeN
}

// FailAdmit advances the admission ordinal and reports whether this
// admission attempt should be refused as if the queue were full (the attempt
// falls within the armed 1..FailAdmitN prefix). Unlike the other probes it
// advances and tests in one call: admission sites have no use for the
// ordinal beyond the decision.
func (in *Injector) FailAdmit() bool {
	if in == nil || in.FailAdmitN == 0 {
		return false
	}
	return int(in.admits.Add(1)) <= in.FailAdmitN
}

// CorruptPower applies the power-map corruption probe to vals (watts per
// grid cell) and reports whether it fired; only the first map built through
// the injector is corrupted.
func (in *Injector) CorruptPower(vals []float64) bool {
	if in == nil || in.CorruptPowerW == 0 || len(vals) == 0 {
		return false
	}
	if in.powerMaps.Add(1) != 1 {
		return false
	}
	vals[0] += in.CorruptPowerW
	return true
}
