package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCanceledTaxonomy(t *testing.T) {
	err := Canceled(context.Canceled)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Canceled(context.Canceled) does not match ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not reachable: %v", err)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("plain cancel must not match ErrBudgetExceeded: %v", err)
	}

	derr := Canceled(context.DeadlineExceeded)
	if !errors.Is(derr, ErrCanceled) || !errors.Is(derr, ErrBudgetExceeded) {
		t.Fatalf("deadline cancel must match both sentinels: %v", derr)
	}
	if !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline cause not reachable: %v", derr)
	}

	// Wrapping elsewhere in the pipeline must not break the match.
	wrapped := fmt.Errorf("thermal: solving system: %w", Canceled(nil))
	if !errors.Is(wrapped, ErrCanceled) {
		t.Fatalf("wrapped cancel lost the sentinel: %v", wrapped)
	}
}

func TestNotConvergedExtraction(t *testing.T) {
	base := &ErrNotConverged{Iters: 42, Residual: 3.5e-4}
	err := fmt.Errorf("core: default point 0.25: %w",
		fmt.Errorf("flow: thermal simulation: %w", base))
	var nc *ErrNotConverged
	if !errors.As(err, &nc) {
		t.Fatalf("ErrNotConverged not extractable from %v", err)
	}
	if nc.Iters != 42 || nc.Residual != 3.5e-4 {
		t.Fatalf("fields lost through wrapping: %+v", nc)
	}
}

func TestRecoveredPreservesLocation(t *testing.T) {
	inner := Recovered("sparse.Pool worker 2", "boom")
	if inner.Where != "sparse.Pool worker 2" || len(inner.Stack) == 0 {
		t.Fatalf("bad recovery record: %+v", inner)
	}
	// A rethrown *ErrPanic keeps its original location.
	outer := Recovered("thermal.Solver.Solve", inner)
	if outer != inner {
		t.Fatalf("rethrown panic relocated: %+v", outer)
	}
}

func TestProvenanceWrapping(t *testing.T) {
	if WithProvenance(nil, "d", "s", 0) != nil {
		t.Fatal("nil error must stay nil")
	}
	base := &ErrSetup{Stage: "coarsen", Err: errors.New("missing entry")}
	err := WithProvenance(fmt.Errorf("flow: thermal simulation: %w", base), "paper-synth9", "hw", 3)
	var pe *ProvenanceError
	if !errors.As(err, &pe) {
		t.Fatalf("provenance not extractable from %v", err)
	}
	if pe.Design != "paper-synth9" || pe.Strategy != "hw" || pe.Point != 3 {
		t.Fatalf("provenance fields wrong: %+v", pe)
	}
	var se *ErrSetup
	if !errors.As(err, &se) || se.Stage != "coarsen" {
		t.Fatalf("inner setup error unreachable: %v", err)
	}
}

func TestInjectorProbes(t *testing.T) {
	var nilInj *Injector
	if nilInj.NextSolve() != 0 || nilInj.FailSolve(1, 0) || nilInj.StallSolve(1) ||
		nilInj.PanicSolve(1) || nilInj.MGSetupError() != nil || nilInj.CorruptPower([]float64{1}) {
		t.Fatal("nil injector must inject nothing")
	}

	in := &Injector{FailCGSolveN: 2, StallCGSolveN: 3, PanicCGSolveN: 4, CorruptPowerW: 0.5}
	var ns []int
	for i := 0; i < 4; i++ {
		ns = append(ns, in.NextSolve())
	}
	if ns[0] != 1 || ns[3] != 4 {
		t.Fatalf("solve ordinals wrong: %v", ns)
	}
	if in.FailSolve(1, 0) || !in.FailSolve(2, 0) || in.FailSolve(2, 1) {
		t.Fatal("FailSolve gating wrong (retry must pass without FailRetry)")
	}
	in.FailRetry = true
	if !in.FailSolve(2, 1) {
		t.Fatal("FailRetry must fail the retry attempt too")
	}
	if in.StallSolve(2) || !in.StallSolve(3) || in.PanicSolve(3) || !in.PanicSolve(4) {
		t.Fatal("stall/panic gating wrong")
	}

	vals := []float64{1.0, 2.0}
	if !in.CorruptPower(vals) || vals[0] != 1.5 {
		t.Fatalf("first power map not corrupted: %v", vals)
	}
	if in.CorruptPower(vals) || vals[0] != 1.5 {
		t.Fatalf("corruption must fire exactly once: %v", vals)
	}

	var setupInj *Injector = &Injector{FailMGSetup: true}
	var se *ErrSetup
	if err := setupInj.MGSetupError(); err == nil || !errors.As(err, &se) {
		t.Fatalf("injected setup failure not typed: %v", err)
	}
}

func TestServiceProbes(t *testing.T) {
	// The zero-value / nil contract every probe shares.
	var nilInj *Injector
	if nilInj.NextAnalyze() != 0 || nilInj.StallAnalyze(1) || nilInj.FailAdmit() {
		t.Fatal("nil injector must inject nothing")
	}
	var zero Injector
	if zero.StallAnalyze(zero.NextAnalyze()) || zero.FailAdmit() {
		t.Fatal("zero-value injector must inject nothing")
	}

	// StallAnalyzeN arms a prefix: analyses 1..N stall, N+1 onward run.
	in := &Injector{StallAnalyzeN: 2}
	if n := in.NextAnalyze(); n != 1 || !in.StallAnalyze(n) {
		t.Fatalf("analysis 1 must stall (got ordinal %d)", n)
	}
	if n := in.NextAnalyze(); n != 2 || !in.StallAnalyze(n) {
		t.Fatalf("analysis 2 must stall (got ordinal %d)", n)
	}
	if n := in.NextAnalyze(); n != 3 || in.StallAnalyze(n) {
		t.Fatalf("analysis 3 must run (got ordinal %d)", n)
	}
	if in.StallAnalyze(0) {
		t.Fatal("ordinal 0 (nil-injector call site) must never stall")
	}

	// FailAdmitN sheds exactly the first N admission attempts.
	adm := &Injector{FailAdmitN: 2}
	got := []bool{adm.FailAdmit(), adm.FailAdmit(), adm.FailAdmit(), adm.FailAdmit()}
	want := []bool{true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FailAdmit sequence %v, want %v", got, want)
		}
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("solver exploded"), ExitFailure},
		{fmt.Errorf("flow: %w", &ErrNotConverged{Iters: 9}), ExitFailure},
		{Canceled(context.Canceled), ExitCanceled},
		{fmt.Errorf("core: sweep: %w", Canceled(context.DeadlineExceeded)), ExitCanceled},
		// Raw context errors that escaped the pipeline unwrapped still exit
		// as cancellations, not analysis failures.
		{context.Canceled, ExitCanceled},
		{fmt.Errorf("reading config: %w", context.DeadlineExceeded), ExitCanceled},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Fatalf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
