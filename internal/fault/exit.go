package fault

import (
	"context"
	"errors"
)

// Conventional process exit statuses for the analysis commands. Cancellation
// (a signal or an expired -timeout) is not an analysis failure: scripts
// driving reproduce/thermflow/thermserve distinguish "the run was cut short"
// from "the pipeline broke" by the exit code alone.
const (
	// ExitOK is a clean completion.
	ExitOK = 0
	// ExitFailure is a genuine analysis failure (solver error, bad input).
	ExitFailure = 1
	// ExitCanceled is the conventional interrupted-by-signal status
	// (128 + SIGINT), used for every cancellation-induced exit: signals,
	// -timeout deadlines, canceled contexts.
	ExitCanceled = 130
)

// ExitCode maps an error to the process exit status the analysis commands
// share: 0 for nil, ExitCanceled for any cancellation-induced failure —
// matched through the taxonomy sentinel ErrCanceled and, for errors that
// escaped the pipeline unwrapped, the raw context errors — and ExitFailure
// for everything else.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return ExitCanceled
	default:
		return ExitFailure
	}
}
